//! Quickstart: a tour of the Amber programming model (paper, section 2).
//!
//! Creates a simulated 4-node x 2-processor cluster, then exercises
//! objects, location-independent invocation, threads, and the mobility
//! primitives — printing what happens and what it cost.
//!
//! Run with: `cargo run --example quickstart`

use amber_core::{AmberObject, Cluster, NodeId};
use amber_engine::SimTime;

/// A user-defined object type: private data plus operations (the closures
/// passed to `invoke`).
struct Sensor {
    readings: Vec<f64>,
}

impl AmberObject for Sensor {
    fn transfer_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.readings.len() * 8
    }
}

fn main() {
    let cluster = Cluster::sim(4, 2);

    cluster
        .run(|ctx| {
            println!("== a uniform network-wide object space ==");
            // Objects live on a node but are invocable from anywhere.
            let local = ctx.create(Sensor { readings: vec![] });
            let remote = ctx.create_on(NodeId(2), Sensor { readings: vec![] });
            println!("local sensor at {}", ctx.locate(&local));
            println!("remote sensor at {}", ctx.locate(&remote));

            // Invoking the remote object ships this thread there (function
            // shipping) — watch our node change during the operation.
            println!("main thread on {}", ctx.node());
            ctx.invoke(&remote, |ctx, s| {
                s.readings.push(20.5);
                println!("...executing the operation on {}", ctx.node());
            });
            println!("after a root-level invocation we stay at {}", ctx.node());

            println!("\n== threads: Start and Join ==");
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let target = ctx.create_on(
                        NodeId(i),
                        Sensor {
                            readings: vec![i as f64],
                        },
                    );
                    ctx.start(&target, move |ctx, s| {
                        ctx.work(SimTime::from_ms(2)); // some computation
                        s.readings.iter().sum::<f64>() * 10.0
                    })
                })
                .collect();
            let results: Vec<f64> = workers.into_iter().map(|h| h.join(ctx)).collect();
            println!("per-node results: {results:?}");

            println!("\n== explicit mobility: MoveTo / Attach / immutable ==");
            let log = ctx.create(Vec::<String>::new());
            ctx.attach(&log, &remote); // co-located, moves together
            ctx.move_to(&remote, NodeId(3));
            println!(
                "after MoveTo: sensor at {}, attached log at {}",
                ctx.locate(&remote),
                ctx.locate(&log)
            );

            let table = ctx.create(vec![1u64, 2, 3, 5, 8, 13]);
            ctx.set_immutable(&table);
            // Shared reads of an immutable object replicate it locally
            // instead of shipping the reader.
            let sum = ctx.invoke_shared(&table, |_, t| t.iter().sum::<u64>());
            println!("replicated read of immutable table: sum = {sum}");

            println!("\n== what it cost ==");
            let p = ctx.protocol_stats();
            println!(
                "invocations: {} local, {} remote; thread migrations: {}; \
                 object moves: {}; replications: {}",
                p.local_invokes,
                p.remote_invokes,
                p.thread_migrations,
                p.object_moves,
                p.replications
            );
        })
        .expect("quickstart failed");

    let net = cluster.net_stats();
    println!(
        "network: {} messages, {} bytes, virtual time {}",
        net.total_msgs(),
        net.total_bytes(),
        cluster.now()
    );
}
