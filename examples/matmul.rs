//! Block matrix multiply with and without immutable-input replication
//! (paper, section 2.3).
//!
//! Run with: `cargo run --release --example matmul`

use amber_apps::matmul::{matmul_sequential, run_matmul, MatmulParams};

fn main() {
    let p = MatmulParams::small(4);
    println!(
        "C = A x B: {0}x{0} blocks of {1}x{1}, on 4 nodes x {2} processors",
        p.grid, p.block, p.procs
    );
    let seq = matmul_sequential(&p);

    for replicate in [false, true] {
        let mut q = p;
        q.replicate_inputs = replicate;
        let r = run_matmul(q);
        assert!((r.checksum - seq).abs() < 1e-6 * seq.abs());
        println!(
            "replicate_inputs={replicate:<5}  time {:>9}  msgs {:>4}  {:>7.1}KB  replications {}",
            format!("{}", r.elapsed),
            r.msgs,
            r.bytes as f64 / 1e3,
            r.replications,
        );
    }
    println!("(both runs match the sequential product)");
}
