//! Installing a custom scheduler at runtime (paper, section 2.1): "an
//! application can install a custom scheduling discipline at runtime by
//! replacing the system scheduler object with a similar object that
//! supports the same interface".
//!
//! This example defines a shortest-job-first policy (priority = negated
//! expected burst) and shows priorities reordering completion under it,
//! then swaps in round-robin timeslicing mid-program.
//!
//! Run with: `cargo run --example custom_sched`

use amber_core::{Cluster, NodeId};
use amber_engine::policy::{RoundRobin, Scheduler};
use amber_engine::{SimTime, ThreadId};

/// A shortest-job-first ready queue: highest priority value first, which
/// callers set to the negated expected burst length.
struct ShortestJobFirst {
    queue: Vec<(ThreadId, i32)>,
}

impl Scheduler for ShortestJobFirst {
    fn enqueue(&mut self, thread: ThreadId, priority: i32) {
        self.queue.push((thread, priority));
    }

    fn dequeue(&mut self) -> Option<ThreadId> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, p))| (*p, std::cmp::Reverse(*i)))?
            .0;
        Some(self.queue.remove(best).0)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "shortest-job-first"
    }
}

fn main() {
    let cluster = Cluster::sim(1, 1);
    cluster
        .run(|ctx| {
            // Install SJF on the (single) node at runtime.
            ctx.install_scheduler(NodeId(0), Box::new(ShortestJobFirst { queue: Vec::new() }));

            let order = ctx.create(Vec::<(u64, u64)>::new());
            // Start long jobs first; SJF should still complete short ones
            // earlier once the queue fills.
            let bursts = [40u64, 30, 20, 10, 5];
            let hs: Vec<_> = bursts
                .iter()
                .map(|&ms| {
                    let anchor = ctx.create(0u8);
                    ctx.start(&anchor, move |ctx, _| {
                        ctx.set_priority(-(ms as i32)); // negated burst = SJF
                        ctx.work(SimTime::from_ms(ms));
                        let t = ctx.now().as_ms();
                        ctx.invoke(&order, move |_, o| o.push((ms, t)));
                    })
                })
                .collect();
            for h in hs {
                h.join(ctx);
            }
            let completions = ctx.invoke(&order, |_, o| o.clone());
            println!("shortest-job-first completions (burst ms, finished at ms):");
            for (burst, at) in &completions {
                println!("  {burst:>3}ms job finished at {at:>4}ms");
            }

            // Swap to round-robin timeslicing mid-program.
            ctx.install_scheduler(NodeId(0), Box::new(RoundRobin::new(SimTime::from_ms(2))));
            let t0 = ctx.now();
            let anchors: Vec<_> = (0..2).map(|_| ctx.create(0u8)).collect();
            let hs: Vec<_> = anchors
                .iter()
                .map(|a| ctx.start(a, |ctx, _| ctx.work(SimTime::from_ms(20))))
                .collect();
            for h in hs {
                h.join(ctx);
            }
            println!(
                "\nround-robin (2ms quantum): two 20ms jobs interleaved, both done after {}",
                ctx.now() - t0
            );
        })
        .expect("custom_sched failed");

    let stats = cluster.net_stats();
    println!("preemptions recorded: {}", stats.node(0).preemptions);
}
