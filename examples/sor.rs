//! The paper's section-6 application: Red/Black SOR over distributed
//! section objects, with the overlap ablation.
//!
//! Run with: `cargo run --release --example sor [rows cols nodes procs]`

use amber_apps::sor::{run_amber_sor, sor_sequential, sor_sequential_time, SorParams};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let rows = args.first().copied().unwrap_or(62);
    let cols = args.get(1).copied().unwrap_or(256);
    let nodes = args.get(2).copied().unwrap_or(4);
    let procs = args.get(3).copied().unwrap_or(2);

    let mut p = SorParams::fig2(nodes, procs, true);
    p.rows = rows;
    p.cols = cols;
    p.max_iters = 12;

    println!(
        "Red/Black SOR: {rows}x{cols} grid, {} sections on {nodes} nodes x {procs} procs",
        p.sections
    );

    let (_, seq_checksum, _) = sor_sequential(&p);
    for overlap in [true, false] {
        let mut q = p;
        q.overlap = overlap;
        let r = run_amber_sor(q);
        let seq = sor_sequential_time(&q, r.iterations);
        assert!(
            (r.checksum - seq_checksum).abs() < 1e-9,
            "parallel result diverged from sequential"
        );
        println!(
            "overlap={overlap:<5}  time {:>9}  speedup {:>5.2}  msgs {:>5}  {:>7.1}KB on the wire",
            format!("{}", r.elapsed),
            seq.as_secs_f64() / r.elapsed.as_secs_f64(),
            r.msgs,
            r.bytes as f64 / 1e3,
        );
    }
    println!("(checksums match the sequential solver bit for bit)");
}
