//! Higher-level placement (paper, section 2.3: policy "best left to the
//! program or higher-level object placement software"): scatter a
//! distributed object array, map over it in parallel, then gather it for a
//! communication-heavy phase and rebalance afterwards.
//!
//! Run with: `cargo run --example placement`

use amber_core::{Cluster, NodeId, SimTime};
use amber_placement::{ObjectArray, ProportionalToProcessors, RoundRobin};

fn main() {
    let cluster = Cluster::sim(4, 2);
    cluster
        .run(|ctx| {
            let mut placer = ProportionalToProcessors::new();
            let arr = ObjectArray::scatter(ctx, &mut placer, 12, |i| (i as u64) * 3);

            let homes: Vec<_> = arr.refs().iter().map(|r| ctx.locate(r).index()).collect();
            println!("scattered across nodes: {homes:?}");

            let total = arr.reduce(
                ctx,
                |ctx, v, _| {
                    ctx.work(SimTime::from_ms(1)); // per-element compute
                    *v
                },
                0u64,
                |a, r| a + r,
            );
            println!("parallel reduce -> {total}");

            // A phase with heavy element-to-element traffic: gather first.
            arr.gather_to(ctx, NodeId(0));
            let (m0, _) = ctx.net_totals();
            let pair_sum = arr.reduce(ctx, |_, v, _| *v, 0u64, |a, r| a + r);
            let (m1, _) = ctx.net_totals();
            println!(
                "gathered phase: sum {pair_sum}, {} messages for 12 invocations",
                m1 - m0
            );

            // Back to balanced placement for the next compute phase.
            let mut rr = RoundRobin::new();
            arr.rebalance(ctx, &mut rr);
            println!(
                "rebalanced: {:?}",
                arr.refs()
                    .iter()
                    .map(|r| ctx.locate(r).index())
                    .collect::<Vec<_>>()
            );
        })
        .expect("placement example failed");
}
