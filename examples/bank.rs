//! The bank: accounts across nodes, transfers under a mobile multi-object
//! lock, an attached audit log, and a conserved-balance audit (paper,
//! sections 2.2-2.3).
//!
//! Run with: `cargo run --release --example bank`

use amber_apps::bank::{run_bank, BankParams};

fn main() {
    let mut p = BankParams::small(4);
    p.tellers = 6;
    p.transfers = 15;
    println!(
        "{} accounts on {} nodes, {} tellers x {} transfers under one mobile lock",
        p.accounts, p.nodes, p.tellers, p.transfers
    );
    let r = run_bank(p);
    println!(
        "committed {} transfers in {}; balance sum = {} (expected {})",
        r.committed,
        r.elapsed,
        r.total,
        p.accounts as i64 * p.initial
    );
    assert_eq!(
        r.total,
        p.accounts as i64 * p.initial,
        "invariant violated!"
    );
    println!("invariant holds: money is conserved");
}
